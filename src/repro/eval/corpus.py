"""Shared on-disk trace corpus for the evaluation battery.

Every work unit of the battery starts by *generating* traffic: the benign
warmup trace, the labeled accuracy scenario, and one load trace per probe
rate.  Generation is deterministic given its parameters, yet the harness
used to repeat it from scratch for every product and in every pool worker.
This module memoizes those traces as ``.rtrc`` files under
``<cache_dir>/traces/`` -- the paper's "canned data with known attack
content", literally canned -- keyed by a content hash of the generation
parameters (plus the package and attack-catalog versions, like the result
cache).  Workers map the files read-only via the batched ``Trace.load``
path; within one process the decoded objects are additionally shared
in-memory, so a battery run touching the same scenario four times decodes
it once.

The corpus is *ambient*: :func:`use_corpus` activates a corpus root for a
``with`` block, and the generation call sites
(:meth:`repro.eval.testbed.EvalTestbed`, ``cluster_scenario``/
``ecommerce_scenario``, ``probe_rate``) route through
:func:`corpus_trace`/:func:`corpus_scenario`, which fall through to plain
generation when no corpus is active.  Results are bit-identical either way:
the trace format round-trips every field exactly (times are f64), packet
``pid``s are diagnostic-only by contract, and every RNG stream is derived
independently per name, so skipping a generation never shifts another
stream.

Treat corpus-returned traces as read-only; they may be shared across
products within a process.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional, Tuple

from .. import __version__
from ..attacks.catalog import CATALOG_VERSION
from ..net.trace import Trace
from ..traffic.mixer import Scenario

__all__ = [
    "CORPUS_SUBDIR",
    "CorpusStats",
    "TraceCorpus",
    "use_corpus",
    "active_corpus",
    "corpus_trace",
    "corpus_scenario",
    "corpus_root",
    "corpus_stats",
    "clear_corpus",
]

#: Corpus directory under the harness cache dir (``.repro-cache/traces/``).
CORPUS_SUBDIR = "traces"

_CORPUS_FORMAT = 1  # bump to invalidate every corpus entry


@dataclass
class CorpusStats:
    """Hit/miss/store counters (in-memory hits count as hits)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.hits, self.misses, self.stores)


def _codec_exact(trace: Trace) -> bool:
    """True when the trace round-trips the ``.rtrc`` codec bit-exactly.

    The one lossy corner of the format is a materialized *empty* payload
    (``b""`` decodes as ``None``); no generator produces one today, but a
    trace containing one must bypass the corpus rather than change shape
    between the cold and warm runs.
    """
    for _, pkt in trace:
        if pkt.payload is not None and len(pkt.payload) == 0:
            return False
    return True


class TraceCorpus:
    """Content-hash-keyed trace store under ``root``.

    Layout: ``<key>.rtrc`` holds the trace; scenarios add a ``<key>.meta.pkl``
    sidecar with the picklable ground-truth metadata (name, duration, seed,
    :class:`~repro.attacks.base.AttackRecord` list).  Writes are atomic
    (temp file + rename); unreadable entries are misses to be regenerated,
    never a crash -- the same contract as the result cache.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.stats = CorpusStats()
        self._memory: Dict[str, object] = {}

    # ------------------------------------------------------------------
    def _key(self, kind: str, token: tuple) -> str:
        payload = repr(("repro-corpus", _CORPUS_FORMAT, __version__,
                        CATALOG_VERSION, kind, token))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _store_file(self, path: str, data: bytes) -> None:
        os.makedirs(self.root, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------
    def trace(self, kind: str, token: tuple,
              build: Callable[[], Trace]) -> Trace:
        """Return the memoized trace for ``(kind, token)``, building and
        storing it on a miss."""
        key = self._key(kind, token)
        cached = self._memory.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached  # type: ignore[return-value]
        path = os.path.join(self.root, f"{key}.rtrc")
        try:
            trace = Trace.load(path)
        except Exception:
            trace = None
        if trace is not None:
            self.stats.hits += 1
            self._memory[key] = trace
            return trace
        self.stats.misses += 1
        trace = build()
        if _codec_exact(trace):
            self._store_file(path, trace.to_bytes())
            self.stats.stores += 1
            self._memory[key] = trace
        return trace

    def scenario(self, kind: str, token: tuple,
                 build: Callable[[], Scenario]) -> Scenario:
        """Like :meth:`trace`, for a full ground-truth-labeled scenario."""
        key = self._key(kind, token)
        cached = self._memory.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached  # type: ignore[return-value]
        tpath = os.path.join(self.root, f"{key}.rtrc")
        mpath = os.path.join(self.root, f"{key}.meta.pkl")
        try:
            with open(mpath, "rb") as fh:
                meta = pickle.load(fh)
            trace = Trace.load(tpath, name=meta["trace_name"])
        except Exception:
            meta = None
            trace = None
        if meta is not None and trace is not None:
            self.stats.hits += 1
            scenario = Scenario(
                name=meta["name"], trace=trace, attacks=meta["attacks"],
                duration_s=meta["duration_s"], seed=meta["seed"])
            self._memory[key] = scenario
            return scenario
        self.stats.misses += 1
        scenario = build()
        if not _codec_exact(scenario.trace):
            return scenario
        meta_blob = pickle.dumps(
            {"name": scenario.name, "trace_name": scenario.trace.name,
             "attacks": scenario.attacks, "duration_s": scenario.duration_s,
             "seed": scenario.seed},
            protocol=pickle.HIGHEST_PROTOCOL)
        self._store_file(tpath, scenario.trace.to_bytes())
        self._store_file(mpath, meta_blob)
        self.stats.stores += 1
        self._memory[key] = scenario
        return scenario


# ----------------------------------------------------------------------
# ambient activation
# ----------------------------------------------------------------------
#: One corpus instance per root, so the in-memory object share survives
#: across successive work units within a process (pool workers included).
_CORPORA: Dict[str, TraceCorpus] = {}

_ACTIVE: Optional[TraceCorpus] = None


def _corpus_for(root: str) -> TraceCorpus:
    corpus = _CORPORA.get(root)
    if corpus is None:
        corpus = _CORPORA[root] = TraceCorpus(root)
    return corpus


@contextmanager
def use_corpus(root: Optional[str]) -> Iterator[None]:
    """Activate the corpus at ``root`` for the block (``None`` disables)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = _corpus_for(root) if root is not None else None
    try:
        yield
    finally:
        _ACTIVE = previous


def active_corpus() -> Optional[TraceCorpus]:
    return _ACTIVE


def corpus_trace(kind: str, token: tuple,
                 build: Callable[[], Trace]) -> Trace:
    """Memoized trace generation; plain ``build()`` when no corpus is
    active."""
    if _ACTIVE is None:
        return build()
    return _ACTIVE.trace(kind, token, build)


def corpus_scenario(kind: str, token: tuple,
                    build: Callable[[], Scenario]) -> Scenario:
    """Memoized scenario generation; plain ``build()`` when no corpus is
    active."""
    if _ACTIVE is None:
        return build()
    return _ACTIVE.scenario(kind, token, build)


def corpus_root(cache_dir: Optional[str]) -> Optional[str]:
    """The corpus directory for a harness cache dir (None passes through)."""
    if cache_dir is None:
        return None
    return os.path.join(cache_dir, CORPUS_SUBDIR)


def corpus_stats() -> CorpusStats:
    """Aggregate counters across every corpus touched by this process."""
    total = CorpusStats()
    for corpus in _CORPORA.values():
        total.hits += corpus.stats.hits
        total.misses += corpus.stats.misses
        total.stores += corpus.stats.stores
    return total


def clear_corpus(cache_dir: str) -> int:
    """Delete every stored corpus entry; returns how many traces were
    removed (sidecars don't count)."""
    root = corpus_root(cache_dir)
    if root is None or not os.path.isdir(root):
        return 0
    removed = 0
    for name in os.listdir(root):
        if name.endswith((".rtrc", ".meta.pkl", ".tmp")):
            os.unlink(os.path.join(root, name))
            if name.endswith(".rtrc"):
                removed += 1
    return removed
