"""Operational performance impact: monitored-host CPU cost.

Table 3: "Operational Performance Impact -- negative impact on the host
processing capacity due to the operation of the IDS.  Expressed as a
percentage of processing power."  Section 2.1 gives the calibration points
this experiment reproduces: nominal event logging 3-5 %, DoD C2-level audit
~20 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..ids.host import HostAgent, LoggingLevel
from ..net.topology import LanTestbed
from ..products.base import Deployment
from ..sim.engine import Engine
from ..traffic.profiles import ClusterProfile

__all__ = ["OverheadReport", "measure_host_overhead", "logging_level_overhead"]


@dataclass(frozen=True)
class OverheadReport:
    """Host-CPU impact of a deployed product."""

    product: str
    mean_host_cpu_fraction: float
    max_host_cpu_fraction: float
    monitored_hosts: int

    @property
    def percent(self) -> float:
        return 100.0 * self.mean_host_cpu_fraction


def measure_host_overhead(
    deployment: Deployment,
    observe_s: float = 10.0,
) -> OverheadReport:
    """Time-weighted CPU impact on monitored hosts during benign load."""
    testbed = deployment.testbed
    if testbed is None or not deployment.host_agents:
        return OverheadReport(product=deployment.name,
                              mean_host_cpu_fraction=0.0,
                              max_host_cpu_fraction=0.0,
                              monitored_hosts=0)
    engine = deployment.engine
    nodes = [h.address for h in testbed.hosts]
    benign = ClusterProfile(nodes).generate(observe_s,
                                            np.random.default_rng(1))
    start = engine.now
    for t, pkt in benign:
        engine.schedule_at(start + t, deployment.ingest, pkt)
    engine.run(until=start + observe_s)

    fractions: List[float] = []
    for agent in deployment.host_agents:
        fractions.append(agent.host.cpu.consumer_average(agent.name))
    return OverheadReport(
        product=deployment.name,
        mean_host_cpu_fraction=float(np.mean(fractions)),
        max_host_cpu_fraction=float(np.max(fractions)),
        monitored_hosts=len(fractions))


def logging_level_overhead(level: LoggingLevel,
                           observe_s: float = 10.0) -> float:
    """Measured host-CPU fraction of one agent at a given audit depth.

    Reproduces the section-2.1 calibration (bench E2): NOMINAL lands in the
    3-5 % band, C2 at ~20 %.
    """
    engine = Engine()
    testbed = LanTestbed(engine, n_hosts=2)
    agent = HostAgent(engine, testbed.hosts[0], logging_level=level)
    engine.run(until=observe_s)
    return agent.host.cpu.consumer_average(agent.name, until=observe_s)
