"""Evaluation testbed assembly: topology + scenario + deployed product.

One :class:`EvalTestbed` per (product, scenario) run: it builds the
Figure-1 network, deploys the product, optionally trains anomaly baselines
on a benign warmup generated from the same site profile ("the best way to
evaluate any IDS is to use real traffic ... from the site where the IDS is
expected to be deployed", section 4), then replays the labeled scenario.
"""

from __future__ import annotations

from typing import List, Optional

from ..attacks.catalog import standard_attack_suite
from ..net.address import IPv4Address
from ..net.topology import LanTestbed
from ..products.base import Deployment, Product
from ..sim.engine import Engine
from ..sim.rng import RngRegistry
from ..traffic.mixer import Scenario, ScenarioBuilder
from ..traffic.profiles import ClusterProfile, EcommerceProfile
from .corpus import corpus_scenario, corpus_trace
from .ground_truth import AccuracyResult, score_alerts

__all__ = ["EvalTestbed", "cluster_scenario", "ecommerce_scenario",
           "EXTERNAL_ATTACKER"]

EXTERNAL_ATTACKER = IPv4Address("198.18.0.1")


def cluster_scenario(
    node_addresses: List[IPv4Address],
    duration_s: float = 70.0,
    seed: int = 0,
    rate_scale: float = 1.0,
    include_dos: bool = True,
    flood_rate_pps: float = 1500.0,
) -> Scenario:
    """The canonical distributed-real-time-cluster scenario: cluster
    background traffic plus the standard labeled attack campaign."""

    def build() -> Scenario:
        builder = ScenarioBuilder("cluster-rt", duration_s=duration_s,
                                  seed=seed)
        builder.add_background(ClusterProfile(node_addresses,
                                              rate_scale=rate_scale))
        suite = standard_attack_suite(
            EXTERNAL_ATTACKER, node_addresses, include_dos=include_dos,
            flood_rate_pps=flood_rate_pps)
        # The canonical campaign is laid out over 70 s; compress the start
        # offsets proportionally for shorter scenarios.
        scale = min(duration_s / 70.0, 1.0)
        builder.add_attacks([(start * scale, attack)
                             for start, attack in suite])
        return builder.build()

    token = (tuple(a.value for a in node_addresses), duration_s, seed,
             rate_scale, include_dos, flood_rate_pps)
    return corpus_scenario("scenario-cluster", token, build)


def ecommerce_scenario(
    server: IPv4Address,
    lan_hosts: List[IPv4Address],
    duration_s: float = 70.0,
    seed: int = 0,
    rate_scale: float = 1.0,
    include_dos: bool = True,
) -> Scenario:
    """The e-commerce contrast scenario (web-shop background traffic)."""

    def build() -> Scenario:
        builder = ScenarioBuilder("ecommerce", duration_s=duration_s,
                                  seed=seed)
        builder.add_background(EcommerceProfile(server,
                                                rate_scale=rate_scale))
        suite = standard_attack_suite(EXTERNAL_ATTACKER, lan_hosts,
                                      include_dos=include_dos)
        scale = min(duration_s / 70.0, 1.0)
        builder.add_attacks([(start * scale, attack)
                             for start, attack in suite])
        return builder.build()

    token = (server.value, tuple(a.value for a in lan_hosts), duration_s,
             seed, rate_scale, include_dos)
    return corpus_scenario("scenario-ecommerce", token, build)


class EvalTestbed:
    """One product deployed against one scenario.

    Parameters
    ----------
    product:
        Product definition to deploy.
    n_hosts:
        Protected hosts on the LAN.
    train_duration_s:
        Benign warmup fed to trainable detectors before the run (0 skips
        training; signature-only products ignore it).
    profile:
        ``"cluster"`` or ``"ecommerce"``; selects background traffic for
        both warmup and scenario.
    """

    def __init__(
        self,
        product: Product,
        n_hosts: int = 6,
        seed: int = 0,
        train_duration_s: float = 30.0,
        profile: str = "cluster",
    ) -> None:
        self.engine = Engine()
        self.lan = LanTestbed(self.engine, n_hosts=n_hosts)
        self.product = product
        self.deployment: Deployment = product.deploy(self.engine, self.lan)
        self.seed = int(seed)
        self.profile = profile
        self._rng = RngRegistry(seed)
        self.node_addresses = [h.address for h in self.lan.hosts]

        if train_duration_s > 0:
            token = (self.profile,
                     tuple(a.value for a in self.node_addresses),
                     train_duration_s, self.seed, "warmup")
            warmup = corpus_trace(
                "warmup", token,
                lambda: self._background_trace(train_duration_s,
                                               self._rng.stream("warmup")))
            self.deployment.train_on(warmup)
        self.deployment.freeze()

    def _background_trace(self, duration_s, rng):
        if self.profile == "ecommerce":
            return EcommerceProfile(self.node_addresses[0]).generate(
                duration_s, rng)
        return ClusterProfile(self.node_addresses).generate(duration_s, rng)

    # ------------------------------------------------------------------
    def make_scenario(self, duration_s: float = 70.0,
                      include_dos: bool = True,
                      flood_rate_pps: float = 1500.0,
                      rate_scale: float = 1.0) -> Scenario:
        if self.profile == "ecommerce":
            return ecommerce_scenario(
                self.node_addresses[0], self.node_addresses,
                duration_s=duration_s, seed=self.seed,
                rate_scale=rate_scale, include_dos=include_dos)
        return cluster_scenario(
            self.node_addresses, duration_s=duration_s, seed=self.seed,
            rate_scale=rate_scale, include_dos=include_dos,
            flood_rate_pps=flood_rate_pps)

    def run_scenario(self, scenario: Scenario,
                     settle_s: float = 5.0,
                     sink: Optional[callable] = None) -> AccuracyResult:
        """Replay a scenario through the deployment and score the alerts.

        ``sink`` overrides the packet entry point (default: the
        deployment's own ``ingest``) -- a fault injector interposes its
        link-fault wrapper this way."""
        start = self.engine.now
        scenario.trace.replay(self.engine,
                              sink if sink is not None
                              else self.deployment.ingest,
                              start_at=start)
        self.engine.run(until=start + scenario.duration_s + settle_s)
        return score_alerts(
            self.deployment.name, scenario,
            self.deployment.monitor.alerts,
            self.deployment.monitor.notifications)
