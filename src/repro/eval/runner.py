"""The full evaluation: every product through the whole measurement battery.

This is the reproduction of the paper's prototype evaluation (section 3.2):
each product is deployed on the testbed, measured (accuracy scenario,
throughput sweep, latency, timeliness, host overhead), scored on the full
metric catalog (analysis + open-source methods), and finally ranked under a
requirement profile's weights (Figures 5-6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.catalog import MetricCatalog, default_catalog
from ..core.requirements import RequirementSet
from ..core.scorecard import Scorecard
from ..core.scoring import WeightedResult, rank_products, weighted_scores
from ..core.weighting import derive_weights
from ..products.base import Product
from .ground_truth import AccuracyResult
from .latency import measure_induced_latency, timeliness_from_accuracy
from .observer import MeasurementBundle, fill_scorecard
from .overhead import measure_host_overhead
from .testbed import EvalTestbed
from .throughput import ThroughputReport, measure_throughput

__all__ = ["EvaluationOptions", "ProductEvaluation", "FieldEvaluation",
           "evaluate_product", "evaluate_field"]

ProductFactory = Callable[[], Product]


@dataclass
class EvaluationOptions:
    """Knobs for the evaluation battery (defaults reproduce E1; tests use
    smaller settings)."""

    seed: int = 0
    n_hosts: int = 6
    scenario_duration_s: float = 70.0
    train_duration_s: float = 30.0
    include_dos: bool = True
    flood_rate_pps: float = 1500.0
    throughput_rates_pps: Sequence[float] = (500, 1000, 2000, 4000, 8000,
                                             16000, 32000)
    throughput_probe_s: float = 1.0
    payload_mode: str = "http"
    profile: str = "cluster"


@dataclass
class ProductEvaluation:
    """All raw measurements for one product."""

    name: str
    accuracy: AccuracyResult
    throughput: ThroughputReport
    bundle: MeasurementBundle


@dataclass
class FieldEvaluation:
    """The complete evaluation outcome across the product field."""

    scorecard: Scorecard
    weights: Dict[str, float]
    results: List[WeightedResult]
    evaluations: Dict[str, ProductEvaluation]
    requirement_profile: str

    def ranking(self) -> List[str]:
        return [r.product for r in rank_products(self.results)]


def evaluate_product(
    factory: ProductFactory,
    options: Optional[EvaluationOptions] = None,
) -> ProductEvaluation:
    """Run the full measurement battery against one product."""
    opts = options or EvaluationOptions()

    # --- accuracy scenario -------------------------------------------
    testbed = EvalTestbed(factory(), n_hosts=opts.n_hosts, seed=opts.seed,
                          train_duration_s=opts.train_duration_s,
                          profile=opts.profile)
    deployment = testbed.deployment
    scenario = testbed.make_scenario(
        duration_s=opts.scenario_duration_s,
        include_dos=opts.include_dos,
        flood_rate_pps=opts.flood_rate_pps)
    accuracy = testbed.run_scenario(scenario)

    # --- derived observations from the same run -----------------------
    traffic_mb = max(scenario.trace.total_bytes / 1e6, 1e-9)
    storage_bytes = sum(a.storage_bytes for a in deployment.analyzers)
    attack_sources = {
        pkt.src.value for _, pkt in scenario.trace if pkt.attack_id}
    timeliness = timeliness_from_accuracy(accuracy)
    latency = measure_induced_latency(deployment)
    overhead = measure_host_overhead(deployment, observe_s=5.0)

    # --- independent load battery (fresh deployments per probe) -------
    throughput = measure_throughput(
        factory, deployment.name,
        rates_pps=opts.throughput_rates_pps,
        duration_s=opts.throughput_probe_s,
        payload_mode=opts.payload_mode,
        seed=opts.seed)

    bundle = MeasurementBundle(
        accuracy=accuracy,
        throughput=throughput,
        latency=latency,
        timeliness=timeliness,
        overhead=overhead,
        deployment=deployment,
        storage_bytes_per_mb=storage_bytes / traffic_mb,
        attack_sources=attack_sources,
        scenario_duration_s=scenario.duration_s,
    )
    return ProductEvaluation(name=deployment.name, accuracy=accuracy,
                             throughput=throughput, bundle=bundle)


def evaluate_field(
    factories: Sequence[ProductFactory],
    requirements: RequirementSet,
    options: Optional[EvaluationOptions] = None,
    catalog: Optional[MetricCatalog] = None,
) -> FieldEvaluation:
    """Evaluate every product and rank them under a requirement profile."""
    catalog = catalog or default_catalog()
    scorecard = Scorecard(catalog)
    evaluations: Dict[str, ProductEvaluation] = {}
    for factory in factories:
        evaluation = evaluate_product(factory, options)
        fill_scorecard(scorecard, evaluation.bundle.deployment.facts,
                       evaluation.bundle)
        evaluations[evaluation.name] = evaluation
    weights = derive_weights(requirements, catalog)
    results = weighted_scores(scorecard, weights, strict=False)
    return FieldEvaluation(
        scorecard=scorecard, weights=weights, results=results,
        evaluations=evaluations, requirement_profile=requirements.name)
