"""The full evaluation: every product through the whole measurement battery.

This is the reproduction of the paper's prototype evaluation (section 3.2):
each product is deployed on the testbed, measured (accuracy scenario,
throughput sweep, latency, timeliness, host overhead), scored on the full
metric catalog (analysis + open-source methods), and finally ranked under a
requirement profile's weights (Figures 5-6).

The battery is decomposed into *work units* -- top-level, picklable
functions over picklable inputs and results:

* :func:`measure_scenario` -- one (product, seed) accuracy scenario plus
  every measurement derived from that same run (latency, timeliness, host
  overhead, storage), summarized as a :class:`ScenarioMeasurement`;
* :func:`measure_rate` -- one (product, seed, offered-rate) load probe of
  the throughput sweep.

:func:`assemble_evaluation` merges completed units back into a
:class:`ProductEvaluation`.  The serial path below runs the units in-line;
``repro.eval.parallel`` fans the same units out across a process pool and
memoizes them on disk (``EvaluationOptions.workers`` / ``cache_dir``),
producing bit-identical results by construction.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Callable, Dict, FrozenSet, List, Optional,
                    Sequence, Tuple)

if TYPE_CHECKING:  # pragma: no cover
    from .dependability import DependabilityReport

from ..core.catalog import MetricCatalog, default_catalog
from ..core.requirements import RequirementSet
from ..core.scorecard import Scorecard
from ..core.scoring import WeightedResult, rank_products, weighted_scores
from ..core.weighting import derive_weights
from ..ids.anomaly import use_anomaly_path
from ..ids.signature import use_engine
from ..products.base import DeploymentSnapshot, Product
from .corpus import corpus_root, use_corpus
from .ground_truth import AccuracyResult
from .latency import (
    LatencyReport,
    TimelinessReport,
    measure_induced_latency,
    timeliness_from_accuracy,
)
from .observer import MeasurementBundle, fill_scorecard
from .overhead import OverheadReport, measure_host_overhead
from .testbed import EvalTestbed
from .throughput import (
    LoadProbe,
    ThroughputReport,
    probe_rate,
    report_from_probes,
)

__all__ = ["EvaluationOptions", "ScenarioMeasurement", "ProductEvaluation",
           "FieldEvaluation", "measure_scenario", "measure_rate",
           "assemble_evaluation", "evaluate_product", "evaluate_field"]

ProductFactory = Callable[[], Product]


@dataclass
class EvaluationOptions:
    """Knobs for the evaluation battery (defaults reproduce E1; tests use
    smaller settings).

    ``workers`` and ``cache_dir`` control *how* the battery executes, never
    *what* it measures: any worker count produces bit-identical results,
    and both knobs are excluded from the result-cache key.
    """

    seed: int = 0
    n_hosts: int = 6
    scenario_duration_s: float = 70.0
    train_duration_s: float = 30.0
    include_dos: bool = True
    flood_rate_pps: float = 1500.0
    throughput_rates_pps: Sequence[float] = (500, 1000, 2000, 4000, 8000,
                                             16000, 32000)
    throughput_probe_s: float = 1.0
    payload_mode: str = "http"
    profile: str = "cluster"
    #: signature matching kernel ("indexed" | "linear"); measurement-
    #: relevant only in execution time -- both kernels produce identical
    #: matches -- but part of the cache key so kernel A/B runs never
    #: share cached results
    engine: str = "indexed"
    #: anomaly scoring path ("fast" | "baseline"); like ``engine``, both
    #: paths score identically, but A/B runs get separate cache entries
    anomaly_path: str = "fast"
    #: named fault plan for the dependability experiment ("none" skips it
    #: entirely and keeps the battery byte-identical to a plain run)
    faults: str = "none"
    #: severity ladder for the degradation fit (each rung is one extra
    #: scenario replay on a fresh deployment)
    fault_severities: Sequence[float] = (0.5, 1.0)
    #: process-pool width; 1 = serial in-process, 0 = one per CPU
    workers: int = 1
    #: on-disk result cache directory; None disables memoization and the
    #: shared trace corpus (``<cache_dir>/traces/``)
    cache_dir: Optional[str] = None


@dataclass
class ScenarioMeasurement:
    """Everything one accuracy-scenario run yields, in picklable form.

    This is the result of the ``scenario`` work unit: the accuracy scoring
    plus every measurement that derives from the same deployment (latency,
    timeliness, host overhead, storage, response/filter activity via the
    deployment snapshot).
    """

    name: str
    accuracy: AccuracyResult
    latency: LatencyReport
    timeliness: TimelinessReport
    overhead: OverheadReport
    snapshot: DeploymentSnapshot
    storage_bytes_per_mb: float
    attack_sources: FrozenSet[int]
    scenario_duration_s: float
    #: clean-vs-faulted comparison; populated only when the options name a
    #: fault plan (``faults != "none"``)
    dependability: Optional["DependabilityReport"] = None


@dataclass
class ProductEvaluation:
    """All raw measurements for one product."""

    name: str
    accuracy: AccuracyResult
    throughput: ThroughputReport
    bundle: MeasurementBundle


@dataclass
class FieldEvaluation:
    """The complete evaluation outcome across the product field."""

    scorecard: Scorecard
    weights: Dict[str, float]
    results: List[WeightedResult]
    evaluations: Dict[str, ProductEvaluation]
    requirement_profile: str

    def ranking(self) -> List[str]:
        return [r.product for r in rank_products(self.results)]


# ----------------------------------------------------------------------
# work units (top-level and picklable by design)
# ----------------------------------------------------------------------
def measure_scenario(
    factory: ProductFactory,
    options: Optional[EvaluationOptions] = None,
) -> ScenarioMeasurement:
    """Run the accuracy scenario and every same-run measurement."""
    opts = options or EvaluationOptions()

    with use_engine(opts.engine), use_anomaly_path(opts.anomaly_path), \
            _unit_corpus(opts):
        return _measure_scenario(factory, opts)


def _unit_corpus(opts: EvaluationOptions):
    """The trace corpus context for one work unit.

    Activated only when the harness cache is on; without a ``cache_dir``
    this is a no-op context so an *ambient* corpus (e.g. one a benchmark
    installed around the whole battery) stays in effect.
    """
    if opts.cache_dir is None:
        return nullcontext()
    return use_corpus(corpus_root(opts.cache_dir))


def _measure_scenario(factory: ProductFactory,
                      opts: EvaluationOptions) -> ScenarioMeasurement:
    testbed = EvalTestbed(factory(), n_hosts=opts.n_hosts, seed=opts.seed,
                          train_duration_s=opts.train_duration_s,
                          profile=opts.profile)
    deployment = testbed.deployment
    scenario = testbed.make_scenario(
        duration_s=opts.scenario_duration_s,
        include_dos=opts.include_dos,
        flood_rate_pps=opts.flood_rate_pps)
    accuracy = testbed.run_scenario(scenario)

    traffic_mb = max(scenario.trace.total_bytes / 1e6, 1e-9)
    storage_bytes = sum(a.storage_bytes for a in deployment.analyzers)
    attack_sources = frozenset(
        pkt.src.value for _, pkt in scenario.trace if pkt.attack_id)
    timeliness = timeliness_from_accuracy(accuracy)
    latency = measure_induced_latency(deployment)
    overhead = measure_host_overhead(deployment, observe_s=5.0)

    dependability = None
    if opts.faults != "none":
        from ..sim.faults import named_plan
        from .dependability import measure_dependability

        dependability = measure_dependability(
            factory, opts, named_plan(opts.faults, seed=opts.seed),
            severities=opts.fault_severities, baseline=accuracy)

    return ScenarioMeasurement(
        name=deployment.name,
        accuracy=accuracy,
        latency=latency,
        timeliness=timeliness,
        overhead=overhead,
        snapshot=deployment.snapshot(),
        storage_bytes_per_mb=storage_bytes / traffic_mb,
        attack_sources=attack_sources,
        scenario_duration_s=scenario.duration_s,
        dependability=dependability,
    )


def measure_rate(
    factory: ProductFactory,
    rate_pps: float,
    options: Optional[EvaluationOptions] = None,
) -> LoadProbe:
    """Offer one load level to a fresh deployment (one throughput unit)."""
    opts = options or EvaluationOptions()
    with use_engine(opts.engine), use_anomaly_path(opts.anomaly_path), \
            _unit_corpus(opts):
        return probe_rate(factory(), float(rate_pps),
                          duration_s=opts.throughput_probe_s,
                          payload_mode=opts.payload_mode, seed=opts.seed)


def assemble_evaluation(
    scenario: ScenarioMeasurement,
    probes: Sequence[LoadProbe],
    options: Optional[EvaluationOptions] = None,
) -> ProductEvaluation:
    """Merge completed work units into one :class:`ProductEvaluation`."""
    opts = options or EvaluationOptions()
    throughput = report_from_probes(scenario.name, opts.payload_mode, probes)
    bundle = MeasurementBundle(
        accuracy=scenario.accuracy,
        throughput=throughput,
        latency=scenario.latency,
        timeliness=scenario.timeliness,
        overhead=scenario.overhead,
        deployment=scenario.snapshot,
        storage_bytes_per_mb=scenario.storage_bytes_per_mb,
        attack_sources=set(scenario.attack_sources),
        scenario_duration_s=scenario.scenario_duration_s,
        dependability=scenario.dependability,
    )
    return ProductEvaluation(name=scenario.name, accuracy=scenario.accuracy,
                             throughput=throughput, bundle=bundle)


# ----------------------------------------------------------------------
# the battery
# ----------------------------------------------------------------------
def evaluate_product(
    factory: ProductFactory,
    options: Optional[EvaluationOptions] = None,
) -> ProductEvaluation:
    """Run the full measurement battery against one product."""
    opts = options or EvaluationOptions()
    if opts.workers != 1 or opts.cache_dir is not None:
        from .parallel import evaluate_product_parallel

        return evaluate_product_parallel(factory, opts)
    scenario = measure_scenario(factory, opts)
    probes = [measure_rate(factory, float(rate), opts)
              for rate in sorted(opts.throughput_rates_pps)]
    return assemble_evaluation(scenario, probes, opts)


def finish_field(
    evaluations: Dict[str, ProductEvaluation],
    requirements: RequirementSet,
    catalog: Optional[MetricCatalog] = None,
) -> FieldEvaluation:
    """Score, weight, and rank completed product evaluations.

    Products are scored in the order of ``evaluations`` (the factory input
    order), so serial and parallel execution render identical scorecards.
    """
    catalog = catalog or default_catalog()
    scorecard = Scorecard(catalog)
    for evaluation in evaluations.values():
        fill_scorecard(scorecard, evaluation.bundle.deployment.facts,
                       evaluation.bundle)
    weights = derive_weights(requirements, catalog)
    results = weighted_scores(scorecard, weights, strict=False)
    return FieldEvaluation(
        scorecard=scorecard, weights=weights, results=results,
        evaluations=evaluations, requirement_profile=requirements.name)


def evaluate_field(
    factories: Sequence[ProductFactory],
    requirements: RequirementSet,
    options: Optional[EvaluationOptions] = None,
    catalog: Optional[MetricCatalog] = None,
) -> FieldEvaluation:
    """Evaluate every product and rank them under a requirement profile."""
    opts = options or EvaluationOptions()
    if opts.workers != 1 or opts.cache_dir is not None:
        from .parallel import evaluate_field_parallel

        return evaluate_field_parallel(factories, requirements, opts, catalog)
    evaluations: Dict[str, ProductEvaluation] = {}
    for factory in factories:
        evaluation = evaluate_product(factory, opts)
        evaluations[evaluation.name] = evaluation
    return finish_field(evaluations, requirements, catalog)
