"""Accuracy experiments: FP/FN ratios, sensitivity sweep, Equal Error Rate.

Figure 4 of the paper shows Type-I (false positive) and Type-II (false
negative) error-rate curves against sensitivity, crossing at the Equal
Error Rate.  "Users should look for systems where the IDS's monitoring
sensitivity can be adjusted so equality between false positive and false
negative error rates can be achieved ... Of course the equal error rate is
not always ideal.  Given the choice, users might prefer to have lower
Type II error at the expense of higher Type I error rates."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import MeasurementError
from ..products.base import Product
from ..sim.faults import FaultPlan
from .ground_truth import AccuracyResult
from .testbed import EvalTestbed

__all__ = ["SweepPoint", "SensitivitySweep", "run_accuracy",
           "sensitivity_sweep", "equal_error_rate"]


@dataclass(frozen=True)
class SweepPoint:
    """One sensitivity setting's observed error rates."""

    sensitivity: float
    false_positive_ratio: float
    false_negative_ratio: float
    result: AccuracyResult


@dataclass
class SensitivitySweep:
    """A full Figure-4 sweep for one product."""

    product: str
    points: List[SweepPoint]

    @property
    def sensitivities(self) -> np.ndarray:
        return np.asarray([p.sensitivity for p in self.points])

    @property
    def fpr(self) -> np.ndarray:
        return np.asarray([p.false_positive_ratio for p in self.points])

    @property
    def fnr(self) -> np.ndarray:
        return np.asarray([p.false_negative_ratio for p in self.points])

    def eer(self) -> Optional[Tuple[float, float]]:
        """Equal-error point ``(sensitivity, rate)`` or None (no crossing)."""
        return equal_error_rate(self.sensitivities, self.fpr, self.fnr)


def run_accuracy(
    product_factory: Callable[[float], Product],
    sensitivity: float,
    seed: int = 0,
    duration_s: float = 70.0,
    include_dos: bool = True,
    n_hosts: int = 6,
    profile: str = "cluster",
    fault_plan: Optional[FaultPlan] = None,
) -> AccuracyResult:
    """Deploy a product at one sensitivity and score the standard scenario.

    ``product_factory(sensitivity)`` must return a fresh product instance
    (products are deployed once per run so detector state never leaks).
    A non-empty ``fault_plan`` replays the scenario under injected faults
    (degraded-conditions accuracy); None or an empty plan is the clean,
    byte-identical path.
    """
    testbed = EvalTestbed(product_factory(sensitivity), n_hosts=n_hosts,
                          seed=seed, profile=profile)
    scenario = testbed.make_scenario(duration_s=duration_s,
                                     include_dos=include_dos)
    if fault_plan is not None and not fault_plan.is_empty:
        from .dependability import run_scenario_under_faults

        accuracy, _ = run_scenario_under_faults(testbed, scenario,
                                                fault_plan)
        return accuracy
    return testbed.run_scenario(scenario)


def sensitivity_sweep(
    product_factory: Callable[[float], Product],
    product_name: str,
    sensitivities: Sequence[float] = (0.1, 0.25, 0.4, 0.55, 0.7, 0.85, 1.0),
    seed: int = 0,
    duration_s: float = 70.0,
    include_dos: bool = False,
    n_hosts: int = 6,
    fault_plan: Optional[FaultPlan] = None,
) -> SensitivitySweep:
    """Sweep sensitivity and collect the two error-rate curves (Figure 4).

    DoS attacks are excluded by default: floods crash low-capacity products
    mid-sweep, which measures robustness (a different metric) rather than
    the accuracy curve.  A ``fault_plan`` runs every point under the same
    injected faults (how the Figure-4 curves shift when the IDS itself is
    degraded).
    """
    if not sensitivities:
        raise MeasurementError("need at least one sensitivity point")
    points: List[SweepPoint] = []
    for s in sensitivities:
        result = run_accuracy(product_factory, float(s), seed=seed,
                              duration_s=duration_s, include_dos=include_dos,
                              n_hosts=n_hosts, fault_plan=fault_plan)
        points.append(SweepPoint(
            sensitivity=float(s),
            false_positive_ratio=result.false_positive_ratio,
            false_negative_ratio=result.false_negative_ratio,
            result=result))
    return SensitivitySweep(product=product_name, points=points)


def equal_error_rate(
    sensitivities: np.ndarray,
    fpr: np.ndarray,
    fnr: np.ndarray,
) -> Optional[Tuple[float, float]]:
    """Locate the FPR/FNR crossing by linear interpolation.

    Returns ``(sensitivity*, rate*)`` at the first sign change of
    ``fnr - fpr``, or ``None`` when the curves never cross in the swept
    range.
    """
    s = np.asarray(sensitivities, dtype=float)
    diff = np.asarray(fnr, dtype=float) - np.asarray(fpr, dtype=float)
    if len(s) < 2:
        return None
    for i in range(len(s) - 1):
        d0, d1 = diff[i], diff[i + 1]
        if d0 == 0.0:
            return float(s[i]), float(fpr[i])
        if d0 * d1 < 0:
            frac = d0 / (d0 - d1)
            s_star = s[i] + frac * (s[i + 1] - s[i])
            rate = fpr[i] + frac * (fpr[i + 1] - fpr[i])
            return float(s_star), float(rate)
    if diff[-1] == 0.0:
        return float(s[-1]), float(fpr[-1])
    return None
